// Package wal implements the two logging protocols the paper compares:
//
//   - ML, traditional message logging (§3.1): every incoming coherence
//     message — fetched pages, incoming diffs, write-invalidation notices
//     — is kept in volatile memory and flushed to the local disk at the
//     next synchronization point, on the critical path.
//
//   - CCL, coherence-centric logging (§3.2, the paper's contribution):
//     only data indispensable for recovery is logged — the diffs this
//     process itself created, the write-invalidation notices it received
//     at its acquires, and content-free records of the asynchronous
//     updates applied to its home pages. The flush happens at the
//     release, overlapped with the diff/ack round trip.
//
// Both implement hlrc.LogHooks. The record encodings here are also what
// the recovery engines decode.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sdsm/internal/arena"
	"sdsm/internal/hlrc"
	"sdsm/internal/memory"
	"sdsm/internal/obsv"
	"sdsm/internal/simtime"
	"sdsm/internal/stable"
)

// Protocol selects a logging protocol.
type Protocol int

// The protocols under evaluation.
const (
	// ProtocolNone is the unmodified home-based SDSM (the baseline row
	// "None" of Table 2). A failure forces re-execution from the start.
	ProtocolNone Protocol = iota
	// ProtocolML is traditional message logging.
	ProtocolML
	// ProtocolCCL is the paper's coherence-centric logging.
	ProtocolCCL
)

// String names the protocol as in the paper's tables.
func (p Protocol) String() string {
	switch p {
	case ProtocolNone:
		return "None"
	case ProtocolML:
		return "ML"
	case ProtocolCCL:
		return "CCL"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Log record kinds stored in stable.Record.Kind.
const (
	// RecNotices holds write-invalidation notices received at one
	// acquire (lock grant or barrier release). Payload: EncodeNotices.
	RecNotices stable.RecordKind = iota + 1
	// RecDiff holds one diff. Payload: writer id, writer interval, diff.
	// Under CCL the writer is the log's owner (it logs only its own
	// diffs); under ML it is the remote writer whose DiffUpdate arrived.
	RecDiff
	// RecEvents holds content-free incoming-update event records
	// (page, writer, interval) triples — CCL only.
	RecEvents
	// RecPage holds a page copy fetched from its home — ML only.
	RecPage
	// RecDiffBatch holds every diff of one (writer, interval) group in a
	// single record: all diffs a release created (own diffs, writer -1)
	// or all diffs one DiffUpdate message delivered (ML). One record per
	// group instead of one per diff cuts the per-record header and
	// (writer, seq, vtSum) prefix overhead and the log-append count on
	// the hot path. Payload: EncodeDiffBatchRecord.
	RecDiffBatch
)

// DefaultGroupCommitBytes is the per-stream staging threshold that
// forces a group-commit flush at a diff-less release on a multi-stream
// store when no explicit Options.GroupCommitBytes is set.
const DefaultGroupCommitBytes = 16 << 10

// Options tunes the log layout without changing the protocol.
type Options struct {
	// LegacyDiffRecords restores the pre-batching layout: one RecDiff
	// record per diff instead of one RecDiffBatch record per (writer,
	// interval) group. Recovery and introspection understand both; the
	// knob exists for the batched-vs-legacy equivalence tests and for
	// reading the layout the paper's per-diff accounting describes.
	LegacyDiffRecords bool
	// GroupCommitBytes is the per-stream pending-byte threshold above
	// which a diff-less release flushes the staged records anyway
	// instead of deferring them into the next durability fence. Only
	// meaningful on multi-stream stores; 0 means
	// DefaultGroupCommitBytes.
	GroupCommitBytes int
}

// New returns the LogHooks implementation for protocol p writing to
// store. ProtocolNone returns hlrc.NopHooks. ctrs (optional) receives a
// LogAppends bump for every record staged into the protocol's log.
func New(p Protocol, store *stable.Store, ctrs *obsv.Counters) hlrc.LogHooks {
	return NewWithOptions(p, store, ctrs, false, Options{})
}

// NewHardened returns the protocol's hooks with the additions torn-tail
// recovery needs. CCL is unchanged (it already logs its own diffs at every
// release). ML additionally logs the diffs it creates at each release
// (writer -1, like CCL's own-diff records), so that a peer whose torn disk
// log lost the tail of its incoming-diff records can re-fetch the updates
// to its home pages from the writers' logs.
func NewHardened(p Protocol, store *stable.Store, ctrs *obsv.Counters) hlrc.LogHooks {
	return NewWithOptions(p, store, ctrs, true, Options{})
}

// NewWithOptions is New/NewHardened with explicit layout options. The
// stream count is taken from the store: a multi-stream store gets
// stream-routed records and (under CCL) group-committed flushes.
func NewWithOptions(p Protocol, store *stable.Store, ctrs *obsv.Counters, hardened bool, opts Options) hlrc.LogHooks {
	streams := 1
	if store != nil {
		streams = store.Streams()
	}
	if opts.GroupCommitBytes == 0 {
		opts.GroupCommitBytes = DefaultGroupCommitBytes
	}
	switch p {
	case ProtocolNone:
		return hlrc.NopHooks{}
	case ProtocolML:
		return &MLHooks{store: store, ctrs: ctrs, logOwnDiffs: hardened, opts: opts, streams: streams}
	case ProtocolCCL:
		return &CCLHooks{store: store, ctrs: ctrs, opts: opts, streams: streams}
	default:
		panic(fmt.Sprintf("wal: unknown protocol %d", int(p)))
	}
}

// routePage maps a page to the log stream its records belong to. The
// page→stream map must be stable across incarnations (recovery re-reads
// by content, but the auditor's per-stream accounting assumes routing is
// a pure function of the page).
func routePage(page memory.PageID, streams int) int {
	if streams <= 1 {
		return 0
	}
	return int(uint32(page) % uint32(streams))
}

// routeOp maps records with no page affinity (acquire notices) to a
// stream by their synchronization-operation index.
func routeOp(op int32, streams int) int {
	if streams <= 1 {
		return 0
	}
	return int(uint32(op) % uint32(streams))
}

// countAppends bumps the shared LogAppends counter, tolerating a nil
// counter set (runs that do not collect metrics).
func countAppends(ctrs *obsv.Counters, n int) {
	if ctrs != nil && n > 0 {
		ctrs.LogAppends.Add(int64(n))
	}
}

// --- record payload encodings ------------------------------------------

// EncodeDiffRecord appends a RecDiff payload packing (writer, seq,
// vtSum, diff) to buf, like Diff.Encode: callers pass a pooled buffer
// (or nil for a fresh exact-size one) and get the extended slice back.
// For own-diff records (writer -1) vtSum carries the sum of the closing
// interval's vector time; recovery sorts re-fetched diffs from different
// writers by it to apply them in a linear extension of their causal
// order. Incoming-diff records (ML) replay in log order and store zero.
func EncodeDiffRecord(buf []byte, writer, seq int32, vtSum int64, d memory.Diff) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(writer))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(seq))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(vtSum))
	return d.Encode(buf)
}

// DiffRecordSize is the encoded size of a RecDiff payload (the sizing
// callers use when drawing an arena buffer).
func DiffRecordSize(d memory.Diff) int { return 16 + d.WireSize() }

// DecodeDiffRecord unpacks a RecDiff payload.
func DecodeDiffRecord(buf []byte) (writer, seq int32, vtSum int64, d memory.Diff, err error) {
	if len(buf) < 16 {
		return 0, 0, 0, d, fmt.Errorf("wal: short diff record")
	}
	writer = int32(binary.LittleEndian.Uint32(buf))
	seq = int32(binary.LittleEndian.Uint32(buf[4:]))
	vtSum = int64(binary.LittleEndian.Uint64(buf[8:]))
	d, rest, err := memory.DecodeDiff(buf[16:])
	if err == nil && len(rest) != 0 {
		err = fmt.Errorf("wal: %d trailing bytes in diff record", len(rest))
	}
	return writer, seq, vtSum, d, err
}

// EncodeEventsRecord appends a RecEvents payload packing the
// update-event triples to buf (caller-supplied, like Diff.Encode).
func EncodeEventsRecord(buf []byte, events []hlrc.UpdateEvent) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(events)))
	for _, e := range events {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Page))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Writer))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Seq))
	}
	return buf
}

// EventsRecordSize is the encoded size of a RecEvents payload.
func EventsRecordSize(events []hlrc.UpdateEvent) int { return 4 + 12*len(events) }

// DecodeEventsRecord unpacks a RecEvents payload.
func DecodeEventsRecord(buf []byte) ([]hlrc.UpdateEvent, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("wal: short events record")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if len(buf) != 12*n {
		return nil, fmt.Errorf("wal: events record wants %d bytes, has %d", 12*n, len(buf))
	}
	events := make([]hlrc.UpdateEvent, n)
	for i := range events {
		events[i] = hlrc.UpdateEvent{
			Page:   memory.PageID(binary.LittleEndian.Uint32(buf)),
			Writer: int32(binary.LittleEndian.Uint32(buf[4:])),
			Seq:    int32(binary.LittleEndian.Uint32(buf[8:])),
		}
		buf = buf[12:]
	}
	return events, nil
}

// EncodePageRecord appends a RecPage payload packing (page, contents) to
// buf (caller-supplied, like Diff.Encode).
func EncodePageRecord(buf []byte, page memory.PageID, data []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(page))
	return append(buf, data...)
}

// PageRecordSize is the encoded size of a RecPage payload.
func PageRecordSize(data []byte) int { return 4 + len(data) }

// DecodePageRecord unpacks a RecPage payload.
func DecodePageRecord(buf []byte) (memory.PageID, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, fmt.Errorf("wal: short page record")
	}
	return memory.PageID(binary.LittleEndian.Uint32(buf)), buf[4:], nil
}

// EncodeDiffBatchRecord appends a RecDiffBatch payload to buf: one
// (writer, seq, vtSum) prefix shared by every diff of the group, a diff
// count, then the diffs back to back. All diffs of a batch close the
// same writer interval, which is what lets the prefix be shared.
func EncodeDiffBatchRecord(buf []byte, writer, seq int32, vtSum int64, diffs []memory.Diff) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(writer))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(seq))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(vtSum))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(diffs)))
	for _, d := range diffs {
		buf = d.Encode(buf)
	}
	return buf
}

// DiffBatchRecordSize is the encoded size of a RecDiffBatch payload.
func DiffBatchRecordSize(diffs []memory.Diff) int {
	n := 20
	for _, d := range diffs {
		n += d.WireSize()
	}
	return n
}

// DecodeDiffBatchRecord unpacks a RecDiffBatch payload. Like
// memory.DecodeDiff it sizes preallocations from the remaining buffer,
// never from the claimed count alone, so corrupt counts produce errors
// instead of huge allocations. Per-run page-bounds validation is the
// caller's (memory.Diff.Validate — the wire format does not know the
// page size).
func DecodeDiffBatchRecord(buf []byte) (writer, seq int32, vtSum int64, diffs []memory.Diff, err error) {
	if len(buf) < 20 {
		return 0, 0, 0, nil, fmt.Errorf("wal: short diff-batch record")
	}
	writer = int32(binary.LittleEndian.Uint32(buf))
	seq = int32(binary.LittleEndian.Uint32(buf[4:]))
	vtSum = int64(binary.LittleEndian.Uint64(buf[8:]))
	n := int(binary.LittleEndian.Uint32(buf[16:]))
	buf = buf[20:]
	capHint := n
	if max := len(buf) / 8; capHint > max {
		capHint = max // each diff is at least 8 bytes on the wire
	}
	diffs = make([]memory.Diff, 0, capHint)
	for i := 0; i < n; i++ {
		d, rest, derr := memory.DecodeDiff(buf)
		if derr != nil {
			return writer, seq, vtSum, nil, fmt.Errorf("wal: diff %d of batch: %w", i, derr)
		}
		buf = rest
		diffs = append(diffs, d)
	}
	if len(buf) != 0 {
		return writer, seq, vtSum, nil, fmt.Errorf("wal: %d trailing bytes in diff-batch record", len(buf))
	}
	return writer, seq, vtSum, diffs, nil
}

// --- CCL ------------------------------------------------------------------

// ownRec marks a staged record produced on the node's own application
// goroutine (acquire notices): it belongs to the very next release flush
// regardless of the arrival cutoff.
const ownRec = simtime.Time(-1)

// stagedRec is one record waiting for a release flush, stamped with the
// virtual arrival of the message that produced it (ownRec for records the
// application goroutine itself staged).
type stagedRec struct {
	rec     stable.Record
	arrival simtime.Time
}

// CCLHooks implements coherence-centric logging. Staged state accumulates
// between releases; AtRelease turns it into one flush overlapped with the
// coherence traffic. Handler-staged records carry their message's virtual
// arrival, and each flush takes exactly those that arrived by the release
// cutoff — so the flush composition (and its disk time) is a function of
// virtual time, not of which goroutine ran first.
type CCLHooks struct {
	mu      sync.Mutex
	store   *stable.Store
	ctrs    *obsv.Counters
	staged  []stagedRec
	opts    Options
	streams int
	// flushScratch is the reusable record slice AtRelease composes each
	// flush into; only the application goroutine touches it (AtRelease is
	// never concurrent with itself). Record payloads are arena buffers,
	// returned to the arena once the flush has copied them to disk.
	flushScratch []stable.Record
	// pendScratch is per-stream pending-byte scratch for the group-commit
	// threshold check (multi-stream only).
	pendScratch []int
}

// OnAcquireNotices stages the received write-invalidation notices for the
// next release flush.
func (h *CCLHooks) OnAcquireNotices(op int32, notices []hlrc.Notice) {
	if len(notices) == 0 {
		return
	}
	data := hlrc.EncodeNotices(notices, arena.Get(hlrc.NoticesWireSize(notices))[:0])
	h.mu.Lock()
	h.staged = append(h.staged, stagedRec{
		rec:     stable.Record{Kind: RecNotices, Op: op, Data: data, Stream: routeOp(op, h.streams)},
		arrival: ownRec,
	})
	h.mu.Unlock()
	countAppends(h.ctrs, 1)
}

// OnPageFetched logs nothing: "CCL does not keep a received copy of a
// shared memory page ... because such an up-to-date copy can be
// reconstructed during recovery" (paper §3.2).
func (h *CCLHooks) OnPageFetched(int32, memory.PageID, []byte) {}

// OnIncomingDiffs stages only the content-free event records; the diff
// contents are discarded with the message (the writer logged them).
func (h *CCLHooks) OnIncomingDiffs(op int32, arrival simtime.Time, events []hlrc.UpdateEvent, _ []memory.Diff) {
	if len(events) == 0 {
		return
	}
	if h.streams <= 1 {
		data := EncodeEventsRecord(arena.Get(EventsRecordSize(events))[:0], events)
		h.mu.Lock()
		h.staged = append(h.staged, stagedRec{
			rec:     stable.Record{Kind: RecEvents, Op: op, Data: data},
			arrival: arrival,
		})
		h.mu.Unlock()
		countAppends(h.ctrs, 1)
		return
	}
	// Split the message's events by their pages' streams: one RecEvents
	// record per touched stream, all with the same op and arrival.
	staged := 0
	for s := 0; s < h.streams; s++ {
		var grp []hlrc.UpdateEvent
		for _, e := range events {
			if routePage(e.Page, h.streams) == s {
				grp = append(grp, e)
			}
		}
		if len(grp) == 0 {
			continue
		}
		data := EncodeEventsRecord(arena.Get(EventsRecordSize(grp))[:0], grp)
		h.mu.Lock()
		h.staged = append(h.staged, stagedRec{
			rec:     stable.Record{Kind: RecEvents, Op: op, Data: data, Stream: s},
			arrival: arrival,
		})
		h.mu.Unlock()
		staged++
	}
	countAppends(h.ctrs, staged)
}

// AtSyncEntry flushes nothing: CCL's only flush point is the release.
func (h *CCLHooks) AtSyncEntry(int32) int { return 0 }

// AtRelease flushes the staged records that arrived by the cutoff plus
// this interval's own diffs — by default one RecDiffBatch record per
// touched stream for the interval. Later-staged records stay for the
// next flush: their messages raced past the previous synchronization
// point, so no deterministic rule could put them in this one.
//
// On a multi-stream store AtRelease is a group-commit scheduler. A
// release that created diffs is a durability fence: everything eligible
// is flushed (in parallel across streams) before the diffs leave the
// node, preserving the CCL logged-before-released guarantee for the
// records other nodes' recoveries read (own diffs are only ever written
// under a fence). A diff-less release defers its flush — the staged
// notices and event records are only ever read by this node's own
// replay, and losing them to a crash is recovered exactly like a torn
// final flush (multi-stream runs always enable tail-mode recovery) —
// unless some stream's pending bytes crossed the group-commit
// threshold. The decision is a pure function of virtual time (staged
// composition + cutoff), so same-seed runs keep identical logs.
//
// The returned byte count is the flush's critical-path size: the
// largest single stream's share, which is what the engine charges the
// virtual clock with (equal to the total on a single-stream store).
func (h *CCLHooks) AtRelease(op int32, seq int32, vtSum int64, cutoff simtime.Time, created []memory.Diff) int {
	if h.streams > 1 && len(created) == 0 {
		// Candidate deferral: tally eligible per-stream pending bytes.
		if cap(h.pendScratch) < h.streams {
			h.pendScratch = make([]int, h.streams)
		}
		pend := h.pendScratch[:h.streams]
		for i := range pend {
			pend[i] = 0
		}
		h.mu.Lock()
		eligible, maxPend := 0, 0
		for _, s := range h.staged {
			if s.arrival == ownRec || s.arrival <= cutoff {
				eligible++
				pend[s.rec.Stream] += s.rec.WireSize()
				if pend[s.rec.Stream] > maxPend {
					maxPend = pend[s.rec.Stream]
				}
			}
		}
		h.mu.Unlock()
		if eligible == 0 {
			return 0
		}
		if maxPend < h.opts.GroupCommitBytes {
			if h.ctrs != nil {
				h.ctrs.WalCoalesced.Add(1)
			}
			return 0
		}
	}
	recs := h.flushScratch[:0]
	h.mu.Lock()
	kept := h.staged[:0]
	for _, s := range h.staged {
		if s.arrival == ownRec || s.arrival <= cutoff {
			recs = append(recs, s.rec)
		} else {
			kept = append(kept, s)
		}
	}
	h.staged = kept
	h.mu.Unlock()
	if len(created) > 0 {
		// writer -1: the log owner.
		recs = appendDiffRecords(recs, op, -1, seq, vtSum, created, h.opts.LegacyDiffRecords, h.streams)
		countAppends(h.ctrs, diffRecordCount(created, h.opts.LegacyDiffRecords, h.streams))
	}
	if len(recs) == 0 {
		return 0
	}
	_, crit := h.store.FlushGroup(recs)
	if h.streams > 1 && h.ctrs != nil {
		if len(created) > 0 {
			h.ctrs.WalFenceFlushes.Add(1)
		} else {
			h.ctrs.WalGroupCommits.Add(1)
		}
	}
	releaseScratch(recs)
	h.flushScratch = recs[:0]
	return crit
}

// DeterministicFlush implements LogHooks: the engine must fence arrivals
// up to the cutoff before AtRelease composes the flush.
func (h *CCLHooks) DeterministicFlush() bool { return true }

// appendDiffRecords appends one (writer, seq) diff group to recs: a
// single RecDiffBatch record by default, one RecDiff per diff in legacy
// layout. On a multi-stream store the group is split by the diffs'
// pages' streams — one RecDiffBatch per touched stream, every piece
// carrying the same (writer, seq, vtSum) prefix, so readers still see
// one logical interval group. Payloads are drawn from the arena;
// releaseScratch returns them once flushed.
func appendDiffRecords(recs []stable.Record, op, writer, seq int32, vtSum int64, diffs []memory.Diff, legacy bool, streams int) []stable.Record {
	if legacy {
		for _, d := range diffs {
			recs = append(recs, stable.Record{
				Kind: RecDiff, Op: op, Stream: routePage(d.Page, streams),
				Data: EncodeDiffRecord(arena.Get(DiffRecordSize(d))[:0], writer, seq, vtSum, d),
			})
		}
		return recs
	}
	if streams <= 1 {
		return append(recs, stable.Record{
			Kind: RecDiffBatch, Op: op,
			Data: EncodeDiffBatchRecord(arena.Get(DiffBatchRecordSize(diffs))[:0], writer, seq, vtSum, diffs),
		})
	}
	for s := 0; s < streams; s++ {
		var grp []memory.Diff
		for _, d := range diffs {
			if routePage(d.Page, streams) == s {
				grp = append(grp, d)
			}
		}
		if len(grp) == 0 {
			continue
		}
		recs = append(recs, stable.Record{
			Kind: RecDiffBatch, Op: op, Stream: s,
			Data: EncodeDiffBatchRecord(arena.Get(DiffBatchRecordSize(grp))[:0], writer, seq, vtSum, grp),
		})
	}
	return recs
}

// diffRecordCount is the number of records appendDiffRecords emits for a
// group (the LogAppends accounting).
func diffRecordCount(diffs []memory.Diff, legacy bool, streams int) int {
	if legacy {
		return len(diffs)
	}
	if streams <= 1 {
		return 1
	}
	n := 0
	seen := make(map[int]bool, streams)
	for _, d := range diffs {
		s := routePage(d.Page, streams)
		if !seen[s] {
			seen[s] = true
			n++
		}
	}
	return n
}

// releaseScratch returns the flushed records' payload buffers to the
// arena. Safe exactly because stable.Store.Flush copies every payload
// into the disk image before returning.
func releaseScratch(recs []stable.Record) {
	for i := range recs {
		arena.Put(recs[i].Data)
		recs[i].Data = nil
	}
}

// --- ML ---------------------------------------------------------------------

// MLHooks implements traditional message logging: every incoming
// coherence message is kept verbatim in volatile memory and flushed at
// the next synchronization point.
type MLHooks struct {
	mu       sync.Mutex
	store    *stable.Store
	ctrs     *obsv.Counters
	volatile []stable.Record
	// logOwnDiffs (hardened mode) additionally logs the diffs this node
	// creates, flushed at the release, so live nodes can serve a torn-tail
	// recovery's home-update re-fetches. Plain ML (the paper's protocol)
	// keeps only incoming messages.
	logOwnDiffs bool
	opts        Options
	streams     int
	// releaseScratch backs the hardened-mode own-diff flush; only the
	// application goroutine touches it.
	releaseScratchRecs []stable.Record
}

// OnAcquireNotices logs the grant/release message's notice content.
func (h *MLHooks) OnAcquireNotices(op int32, notices []hlrc.Notice) {
	if len(notices) == 0 {
		return
	}
	data := hlrc.EncodeNotices(notices, arena.Get(hlrc.NoticesWireSize(notices))[:0])
	h.mu.Lock()
	h.volatile = append(h.volatile, stable.Record{Kind: RecNotices, Op: op, Data: data, Stream: routeOp(op, h.streams)})
	h.mu.Unlock()
	countAppends(h.ctrs, 1)
}

// OnPageFetched logs the full content of the fetched page — the dominant
// share of ML's log volume.
func (h *MLHooks) OnPageFetched(op int32, page memory.PageID, data []byte) {
	rec := EncodePageRecord(arena.Get(PageRecordSize(data))[:0], page, data)
	h.mu.Lock()
	h.volatile = append(h.volatile, stable.Record{Kind: RecPage, Op: op, Data: rec, Stream: routePage(page, h.streams)})
	h.mu.Unlock()
	countAppends(h.ctrs, 1)
}

// OnIncomingDiffs logs the received DiffUpdate contents: the message is
// one writer interval, so its diffs become one RecDiffBatch record (one
// RecDiff per diff in legacy layout).
func (h *MLHooks) OnIncomingDiffs(op int32, _ simtime.Time, events []hlrc.UpdateEvent, diffs []memory.Diff) {
	if len(diffs) == 0 {
		return
	}
	h.mu.Lock()
	h.volatile = appendDiffRecords(h.volatile, op, events[0].Writer, events[0].Seq, 0, diffs, h.opts.LegacyDiffRecords, h.streams)
	h.mu.Unlock()
	countAppends(h.ctrs, diffRecordCount(diffs, h.opts.LegacyDiffRecords, h.streams))
}

// AtSyncEntry flushes the volatile log on the critical path. On a
// multi-stream store the streams are written in parallel and the
// returned (charged) byte count is the largest single stream's share.
func (h *MLHooks) AtSyncEntry(int32) int {
	h.mu.Lock()
	recs := h.volatile
	h.volatile = nil
	h.mu.Unlock()
	if len(recs) == 0 {
		return 0
	}
	_, crit := h.store.FlushGroup(recs)
	releaseScratch(recs)
	h.mu.Lock()
	if h.volatile == nil {
		h.volatile = recs[:0] // recycle the slice backing too
	}
	h.mu.Unlock()
	return crit
}

// AtRelease flushes nothing extra under plain ML (it already flushed at
// the entry of this synchronization operation). Hardened ML flushes the
// interval's own diffs here, before they are sent to the homes.
func (h *MLHooks) AtRelease(op int32, seq int32, vtSum int64, _ simtime.Time, created []memory.Diff) int {
	if !h.logOwnDiffs || len(created) == 0 {
		return 0
	}
	// writer -1: the log owner.
	recs := appendDiffRecords(h.releaseScratchRecs[:0], op, -1, seq, vtSum, created, h.opts.LegacyDiffRecords, h.streams)
	countAppends(h.ctrs, len(recs))
	_, crit := h.store.FlushGroup(recs)
	releaseScratch(recs)
	h.releaseScratchRecs = recs[:0]
	return crit
}

// DeterministicFlush implements LogHooks: ML flushes everything staged at
// every synchronization entry, so there is no composition to pin down —
// and its recovery replay depends on flush-at-entry record availability,
// which an arrival filter would change.
func (h *MLHooks) DeterministicFlush() bool { return false }
