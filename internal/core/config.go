// Package core assembles the recoverable home-based SDSM: it builds the
// simulated cluster (transport, stable storage, HLRC nodes, logging
// hooks, recovery service), runs programs on it, injects crashes, drives
// recovery, and assembles the run reports the benchmarks print.
package core

import (
	"fmt"

	"sdsm/internal/fault"
	"sdsm/internal/obsv"
	"sdsm/internal/simtime"
	"sdsm/internal/telemetry"
	"sdsm/internal/wal"
)

// Config describes one run of the recoverable SDSM.
type Config struct {
	// Nodes is the cluster size (the paper uses 8).
	Nodes int
	// PageSize is the coherence unit in bytes (default 4096).
	PageSize int
	// NumPages sizes the shared address space.
	NumPages int
	// Protocol selects the logging protocol (None, ML, CCL).
	Protocol wal.Protocol
	// Model is the platform cost model; zero value means the calibrated
	// default.
	Model *simtime.CostModel
	// Homes optionally assigns a home node per page; nil means
	// block-distributed (contiguous ranges of pages per node, which
	// matches how the evaluation applications partition their data).
	Homes []int
	// HomeUndo maintains the volatile home-side undo history needed by
	// CCL-recovery's versioned fetches. Off for pure failure-free
	// overhead measurements.
	HomeUndo bool
	// LockManagerNode and BarrierManagerNode host the synchronization
	// managers (default node 0).
	LockManagerNode    int
	BarrierManagerNode int
	// SkipInitialCheckpoint suppresses the op-0 checkpoint (failure-free
	// logging measurements, where the paper takes no checkpoints).
	SkipInitialCheckpoint bool
	// CheckpointEveryBarriers > 0 takes a periodic checkpoint after every
	// k-th barrier at lock-free points: the first checkpoint stores the
	// full image, later ones account only pages modified since (the
	// paper's §3.2 policy). The creation cost is charged to the node's
	// clock. Crash recovery still replays from the initial checkpoint
	// (see internal/checkpoint.RestoreInitial).
	CheckpointEveryBarriers int
	// NoFlushOverlap disables CCL's latency-tolerance technique: the
	// release flush is charged fully on the critical path instead of
	// overlapping the diff/ack round trip. Ablation only.
	NoFlushOverlap bool
	// DistributedLocks statically distributes lock managers (manager of
	// lock l is node l mod Nodes), as TreadMarks does, instead of the
	// default centralized manager. Incompatible with RunWithCrash.
	DistributedLocks bool
	// LegacyWire reverts the release path to the pre-batching layouts: one
	// DiffUpdate message per diff on the wire and one RecDiff log record
	// per diff on disk. Kept for the batched-vs-legacy equivalence tests;
	// results (memory images, interval/diff counts, reconciliation) must
	// not differ.
	LegacyWire bool
	// LeaseDuration enables lease-based online recovery (see RunWithChurn):
	// lock grants and barrier releases carry virtual-clock leases, a
	// crashed node is declared dead only after its lease expires, its home
	// pages migrate permanently to a deterministic successor, and its
	// recovered incarnation replays concurrently with the surviving
	// cluster. Zero (the default) keeps the offline stop-the-world
	// recovery semantics and a byte-identical wire format.
	LeaseDuration simtime.Duration
	// Transport selects the wire backend under the simulated network:
	// TransportSim (the default, also the empty string) delivers copies by
	// direct channel send and is byte-deterministic for a given seed;
	// TransportTCP moves every non-self copy over a loopback TCP socket
	// (internal/transport/tcp) — virtual-time costs and the protocol are
	// identical, but goroutine interleavings differ, so only the final
	// memory image and the log audits are comparable across backends.
	Transport Transport
	// NetBudgetBytesPerSec, with TransportTCP, bounds the fabric's
	// physical send rate with a token bucket (coalescing packs queued
	// frames into fewer, larger writes under pressure). 0 = unlimited.
	// Ignored by TransportSim.
	NetBudgetBytesPerSec int64
	// LogStreams is the number of parallel log streams per node's stable
	// store (0 or 1 = the classic single stream, whose on-disk format is
	// byte-identical to earlier versions). With more than one stream,
	// records are routed by page/home hash, each record carries an
	// LSN-vector deriving the cross-stream total order, CCL group-commits
	// flushes across diff-less releases behind a durability fence at
	// diff-carrying releases, and tail-mode recovery is always enabled
	// (deferred records lost to a crash recover exactly like a torn
	// final flush).
	LogStreams int
	// Faults is the deterministic fault-injection plan: seeded message
	// loss, duplication and delay on the transport, and torn log writes on
	// crash. The zero value injects nothing. The same seed always yields
	// the same fault schedule, execution and report.
	Faults fault.Plan
	// Trace, when non-nil, collects per-node coherence events and latency
	// histograms (see internal/obsv). It must be built with
	// obsv.NewCollector(Nodes). Nil disables tracing at zero cost.
	Trace *obsv.Collector
	// Telemetry, when non-nil, is attached to the run's live metric
	// sources (per-node counters, the trace collector, and the TCP
	// fabric's per-link wire counters when TransportTCP) as soon as the
	// cluster is built, so an HTTP scrape sees the run while it is in
	// flight (see internal/telemetry).
	Telemetry *telemetry.Registry
}

// Transport names a wire backend (see Config.Transport).
type Transport string

const (
	// TransportSim is the deterministic in-process backend.
	TransportSim Transport = "sim"
	// TransportTCP is the real-socket loopback backend.
	TransportTCP Transport = "tcp"
)

// ParseTransport maps a CLI flag value to a Transport.
func ParseTransport(s string) (Transport, error) {
	switch Transport(s) {
	case "", TransportSim:
		return TransportSim, nil
	case TransportTCP:
		return TransportTCP, nil
	}
	return "", fmt.Errorf("core: unknown transport %q (want sim or tcp)", s)
}

// withDefaults validates the config and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Nodes <= 0 {
		return c, fmt.Errorf("core: Nodes must be positive, got %d", c.Nodes)
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.PageSize <= 0 || c.PageSize%8 != 0 {
		return c, fmt.Errorf("core: PageSize must be a positive multiple of 8, got %d", c.PageSize)
	}
	if c.NumPages <= 0 {
		return c, fmt.Errorf("core: NumPages must be positive, got %d", c.NumPages)
	}
	if c.Model == nil {
		m := simtime.DefaultCostModel()
		c.Model = &m
	}
	if c.Homes == nil {
		c.Homes = BlockHomes(c.NumPages, c.Nodes)
	}
	if len(c.Homes) != c.NumPages {
		return c, fmt.Errorf("core: Homes has %d entries for %d pages", len(c.Homes), c.NumPages)
	}
	for p, h := range c.Homes {
		if h < 0 || h >= c.Nodes {
			return c, fmt.Errorf("core: page %d homed at invalid node %d", p, h)
		}
	}
	if c.LockManagerNode < 0 || c.LockManagerNode >= c.Nodes ||
		c.BarrierManagerNode < 0 || c.BarrierManagerNode >= c.Nodes {
		return c, fmt.Errorf("core: manager node out of range")
	}
	if c.LeaseDuration < 0 {
		return c, fmt.Errorf("core: LeaseDuration must be non-negative, got %d", c.LeaseDuration)
	}
	switch c.Transport {
	case "", TransportSim:
		c.Transport = TransportSim
		if c.NetBudgetBytesPerSec != 0 {
			return c, fmt.Errorf("core: NetBudgetBytesPerSec needs TransportTCP")
		}
	case TransportTCP:
	default:
		return c, fmt.Errorf("core: unknown transport %q", c.Transport)
	}
	if c.NetBudgetBytesPerSec < 0 {
		return c, fmt.Errorf("core: NetBudgetBytesPerSec must be non-negative, got %d", c.NetBudgetBytesPerSec)
	}
	if c.LogStreams == 0 {
		c.LogStreams = 1
	}
	if c.LogStreams < 1 || c.LogStreams > 64 {
		return c, fmt.Errorf("core: LogStreams must be in [1,64], got %d", c.LogStreams)
	}
	if err := c.Faults.ValidateNodes(c.Nodes); err != nil {
		// Node-aware validation: partition link-groups must name nodes of
		// this cluster. Catching it here turns what the transport would
		// panic on into a config error.
		return c, fmt.Errorf("core: %w", err)
	}
	if c.Trace != nil && c.Trace.Nodes() != c.Nodes {
		return c, fmt.Errorf("core: Trace collector sized for %d nodes, cluster has %d", c.Trace.Nodes(), c.Nodes)
	}
	return c, nil
}

// BlockHomes distributes pages over nodes in contiguous blocks, the
// assignment the evaluation applications use (each node is home to the
// partition it mostly writes, like first-touch placement in HLRC
// systems).
func BlockHomes(numPages, nodes int) []int {
	homes := make([]int, numPages)
	per := (numPages + nodes - 1) / nodes
	for p := range homes {
		h := p / per
		if h >= nodes {
			h = nodes - 1
		}
		homes[p] = h
	}
	return homes
}

// RoundRobinHomes distributes pages over nodes round-robin (an
// alternative placement exercised by the ablation benchmarks).
func RoundRobinHomes(numPages, nodes int) []int {
	homes := make([]int, numPages)
	for p := range homes {
		homes[p] = p % nodes
	}
	return homes
}
