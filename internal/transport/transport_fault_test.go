package transport

import (
	"strings"
	"testing"
	"time"

	"sdsm/internal/fault"
	"sdsm/internal/simtime"
)

func faultyPair(t *testing.T, p fault.Plan) (*Network, *Endpoint, *Endpoint) {
	t.Helper()
	nw := NewNetwork(2, simtime.DefaultCostModel())
	nw.SetFaultPlan(p)
	return nw, nw.NewEndpoint(0, simtime.NewClock(0)), nw.NewEndpoint(1, simtime.NewClock(0))
}

// echoUntilQuit services b's inbox like a protocol loop: suppress wire
// duplicates, then answer every (possibly retransmitted) request.
func echoUntilQuit(b *Endpoint, quit <-chan struct{}) {
	for {
		select {
		case m := <-b.Inbox():
			if b.WireDup(m) {
				continue
			}
			at := b.ArrivalOf(m)
			b.ReplyAt(at, m, m.Kind, 16, m.Payload)
		case <-quit:
			return
		}
	}
}

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

// TestUnreachablePeerWaitPanics drops every copy: Pending.Wait must
// charge the full backoff schedule to the virtual clock and then declare
// the peer unreachable rather than hang.
func TestUnreachablePeerWaitPanics(t *testing.T) {
	_, a, _ := faultyPair(t, fault.Plan{Seed: 1, DropProb: 1, MaxAttempts: 4})
	p := a.CallAsync(1, Kind(3), 64, nil)
	mustPanic(t, "peer unreachable", func() { p.Wait(a.Clock()) })
	if a.Clock().Now() == 0 {
		t.Error("retry timeouts were not charged to the virtual clock")
	}
}

// TestUnreachablePeerWaitDetachedPanics exercises the same bound through
// the recovery-side wait path.
func TestUnreachablePeerWaitDetachedPanics(t *testing.T) {
	_, a, _ := faultyPair(t, fault.Plan{Seed: 1, DropProb: 1, MaxAttempts: 4})
	p := a.CallAsync(1, Kind(3), 64, nil)
	mustPanic(t, "peer unreachable", func() { p.WaitDetached(a.Clock()) })
}

// TestUnreachablePeerOneWayPanics: one-way sends use background ARQ, so
// the attempt bound fires inside Send itself.
func TestUnreachablePeerOneWayPanics(t *testing.T) {
	_, a, _ := faultyPair(t, fault.Plan{Seed: 1, DropProb: 1, MaxAttempts: 3})
	mustPanic(t, "peer unreachable", func() { a.Send(1, Kind(5), 32, nil) })
}

// TestLocalCallBypassesFaults: requests to self (a node acting as its own
// manager) take the local branch and must never be dropped, duplicated or
// delayed, even under a total-loss plan.
func TestLocalCallBypassesFaults(t *testing.T) {
	nw := NewNetwork(2, simtime.DefaultCostModel())
	nw.SetFaultPlan(fault.Plan{Seed: 1, DropProb: 1, MaxAttempts: 2})
	a := nw.NewEndpoint(0, simtime.NewClock(0))
	go func() {
		m := <-a.Inbox()
		a.ReplyAt(a.ArrivalOf(m), m, Kind(2), 8, "self")
	}()
	resp := a.CallAsync(0, Kind(1), 8, nil).Wait(a.Clock())
	if resp.Payload.(string) != "self" {
		t.Fatalf("self call answered %+v", resp)
	}
}

// TestRetryRecoversFromLoss runs an echo workload under heavy seeded
// loss, duplication and delay; every call must still complete, and the
// retransmission timeouts must show up on the caller's clock.
func TestRetryRecoversFromLoss(t *testing.T) {
	_, a, b := faultyPair(t, fault.Plan{Seed: 42, DropProb: 0.4, DupProb: 0.3, DelayProb: 0.3})
	quit := make(chan struct{})
	defer close(quit)
	go echoUntilQuit(b, quit)
	for i := 0; i < 200; i++ {
		resp := a.Call(1, Kind(9), 64, i)
		if resp.Payload.(int) != i {
			t.Fatalf("call %d answered %v", i, resp.Payload)
		}
	}
	// 40% request loss (and more reply loss on top) over 200 calls must
	// have triggered at least one retransmission timeout; a pure-RTT clock
	// would stay under 200 round trips.
	pureRTT := simtime.Time(200) * simtime.Time(a.nw.Model().RoundTrip(64, 16))
	if a.Clock().Now() <= pureRTT {
		t.Errorf("clock %v shows no retry charges (pure RTT would be %v)", a.Clock().Now(), pureRTT)
	}
}

// TestOneWayLossBecomesDelay: a dropped one-way copy is retransmitted in
// the background; the surviving copy must carry the accumulated timeouts
// as extra wire delay rather than charging the sender.
func TestOneWayLossBecomesDelay(t *testing.T) {
	_, a, b := faultyPair(t, fault.Plan{Seed: 3, DropProb: 0.5})
	const n = 50
	for i := 0; i < n; i++ {
		a.Send(1, Kind(4), 8, i)
	}
	if a.Clock().Now() != 0 {
		t.Errorf("one-way ARQ charged the sender's clock: %v", a.Clock().Now())
	}
	delayed, got := 0, 0
	for got < n {
		m := <-b.Inbox()
		if b.WireDup(m) {
			continue
		}
		if m.Payload.(int) != got {
			t.Fatalf("message %d arrived out of order (got %d)", got, m.Payload.(int))
		}
		if m.extraDelay > 0 {
			delayed++
		}
		got++
	}
	if delayed == 0 {
		t.Errorf("50%% loss over %d sends produced no retransmission delay", n)
	}
}

// TestWireDupSuppression forces a duplicate of every delivered copy and
// checks the receiver discards exactly the duplicates, in order.
func TestWireDupSuppression(t *testing.T) {
	nw, a, b := faultyPair(t, fault.Plan{Seed: 1, DupProb: 1})
	const n = 20
	for i := 0; i < n; i++ {
		a.Send(1, Kind(4), 8, i)
	}
	got, dups := 0, 0
	for i := 0; i < 2*n; i++ { // every send put exactly two copies on the wire
		m := <-b.Inbox()
		if b.WireDup(m) {
			dups++
			continue
		}
		if m.Payload.(int) != got {
			t.Fatalf("message %d arrived out of order (got %d)", got, m.Payload.(int))
		}
		got++
	}
	if got != n {
		t.Fatalf("delivered %d distinct messages, want %d", got, n)
	}
	if dups != n {
		t.Errorf("DupProb=1 delivered %d duplicates for %d messages", dups, n)
	}
	if nw.MsgCount() != 2*n {
		t.Errorf("wire counter %d, want %d (original + duplicate per send)", nw.MsgCount(), 2*n)
	}
}

// TestFaultDeterministicSchedule: the fates are pure functions of (seed,
// link, sequence), so two identical networks must produce identical wire
// statistics and identical per-copy delays.
func TestFaultDeterministicSchedule(t *testing.T) {
	run := func() (int64, int64, simtime.Duration) {
		nw, a, b := faultyPair(t, fault.Plan{Seed: 99, DropProb: 0.3, DupProb: 0.3, DelayProb: 0.5})
		quit := make(chan struct{})
		defer close(quit)
		go echoUntilQuit(b, quit)
		var total simtime.Duration
		for i := 0; i < 100; i++ {
			m := a.Call(1, Kind(6), 32, i)
			total += m.extraDelay
		}
		return nw.MsgCount(), nw.ByteCount(), total
	}
	m1, b1, d1 := run()
	m2, b2, d2 := run()
	if m1 != m2 || b1 != b2 || d1 != d2 {
		t.Errorf("schedules diverge: msgs %d/%d bytes %d/%d delay %v/%v", m1, m2, b1, b2, d1, d2)
	}
}

// TestInboxOverflowPanicNamesCulprit: a full inbox must fail loudly with
// the stuck node, the queue depth and the message kind in the message.
func TestInboxOverflowPanicNamesCulprit(t *testing.T) {
	_, a, _ := faultyPair(t, fault.Plan{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overflowing an inbox must panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic payload %T, want string", r)
		}
		for _, want := range []string{"inbox overflow at node 1", "kind 8", "from node 0", "messages queued"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q missing %q", msg, want)
			}
		}
	}()
	for i := 0; i <= DefaultInboxCap; i++ {
		a.Send(1, Kind(8), 8, nil)
	}
}

// TestRetryBackoffCaps: the charged timeout grows exponentially but must
// stop doubling at the cap so late retries stay bounded.
func TestRetryBackoffCaps(t *testing.T) {
	p := fault.Plan{Seed: 1, DropProb: 1, RetryTimeout: time.Millisecond, MaxAttempts: 20}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.RTO(1) != time.Millisecond {
		t.Errorf("first RTO = %v, want base", p.RTO(1))
	}
	if p.RTO(2) != 2*time.Millisecond {
		t.Errorf("second RTO = %v, want doubled base", p.RTO(2))
	}
	capped := p.RTO(19)
	if p.RTO(18) != capped {
		t.Errorf("backoff keeps growing past the cap: %v then %v", p.RTO(18), capped)
	}
}
